"""Fault injection and graceful degradation across the stack.

Mining is *advisory*: a failed, overrunning, or quarantined mining job is
semantically "no repeats found in this window", never a crash and never
corrupted shared state. These suites pin the whole degradation ladder:

* **Deterministic fault plans** -- same seed, same stream, same schedule,
  so chaos runs are reproducible and fault-free tenants can be
  byte-compared against their no-fault runs.
* **Job containment** -- a failing mining job resolves to the empty
  degraded result; the poisoned result never enters a (shared) memo.
* **Lane quarantine** -- consecutive failures trip a per-lane circuit
  breaker: the lane serves pass-through results (no shared-scheduler
  cost) until an exponential-backoff probe recovers it.
* **Replica-drop degradation** -- a replicated session survives a dead
  node: survivors keep byte-identical agreement, the coordinator stops
  counting the dead consumer, and the gauges say so.
* **The headline chaos property** -- under seeded randomized fault
  schedules scoped to a subset of tenants, every tenant's stream stays
  valid (task conservation holds), fault-free tenants are byte-identical
  to their no-fault runs, and the service never dies.
"""

import pytest

import repro.api as api
from repro.api import build_config, open_session
from repro.core.jobs import JobExecutor, MiningMemo
from repro.core.processor import ApopheniaConfig
from repro.experiments.multi_tenant import capture_stream, run_service
from repro.faults import (
    FAULT_PLANS,
    MAX_PROBE_BACKOFF,
    NULL_FAULT_PLAN,
    CircuitBreaker,
    FaultPlan,
    MiningFault,
    NullFaultPlan,
    parse_fault_spec,
    resolve_fault_plan,
)
from repro.errors import SessionClosedError
from repro.runtime.session import RuntimeSessionFactory
from repro.service import ApopheniaService, SharedJobExecutor
from repro.service.replicated import ReplicatedBackend

pytestmark = pytest.mark.faults

#: Same tier-1 sizing as the service suites: small enough to stay fast,
#: large enough that traces fire and mining jobs actually run.
FAST_CONFIG = ApopheniaConfig(
    min_trace_length=3,
    batchsize=200,
    multi_scale_factor=25,
    job_base_latency_ops=10,
    initial_ingest_margin_ops=20,
)

#: Replicated sizing (mirrors tests/test_replicated_backend.py).
REPLICATED_CONFIG = FAST_CONFIG.with_overrides(
    job_base_latency_ops=40,
    initial_ingest_margin_ops=10,
    num_nodes=3,
)

#: A window with real repeats, so healthy mining returns a non-empty
#: result the degraded empty value can be told apart from.
REPEATING_WINDOW = [1, 2, 3, 4, 5] * 8
MIN_LENGTH = 3


@pytest.fixture(scope="module")
def app_streams():
    """One small captured stream per application type."""
    return {
        name: capture_stream(name, 800, task_scale=0.05)
        for name in ("s3d", "stencil", "jacobi", "cfd")
    }


def _conserves_tasks(outcome):
    """Task conservation: every task seen was flushed or traced."""
    tasks_seen, tasks_flushed, tasks_traced = outcome.stats[:3]
    return tasks_seen == tasks_flushed + tasks_traced


# ---------------------------------------------------------------------------
# Fault plans: determinism, parsing, config flow
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_schedule_is_deterministic_across_instances(self):
        kwargs = dict(seed=7, mining_failure_rate=0.1,
                      mining_overrun_rate=0.1, mining_delay_rate=0.2)
        a, b = FaultPlan(**kwargs), FaultPlan(**kwargs)
        schedule = [
            (a.mining_fault("tenant", j), b.mining_fault("tenant", j))
            for j in range(400)
        ]
        for fault_a, fault_b in schedule:
            if fault_a is None:
                assert fault_b is None
            else:
                assert fault_b is not None and fault_a.kind == fault_b.kind
        kinds = {f.kind for f, _ in schedule if f is not None}
        # The mix actually spreads across all three kinds at these rates.
        assert kinds == {
            MiningFault.RAISE, MiningFault.OVERRUN, MiningFault.DELAY
        }

    def test_different_seeds_and_streams_differ(self):
        base = FaultPlan(seed=1, mining_failure_rate=0.3)
        other_seed = FaultPlan(seed=2, mining_failure_rate=0.3)

        def bitmap(plan, stream):
            return [
                plan.mining_fault(stream, j) is not None for j in range(200)
            ]

        assert bitmap(base, "a") != bitmap(other_seed, "a")
        assert bitmap(base, "a") != bitmap(base, "b")

    def test_stream_scoping(self):
        plan = FaultPlan(seed=3, mining_failure_rate=1.0, streams=("a",))
        assert plan.mining_fault("a", 0) is not None
        assert plan.mining_fault("b", 0) is None
        assert not plan.should_drop_node("b", 0, 10**9)

    def test_fail_jobs_window_always_raises(self):
        plan = FaultPlan(seed=0, fail_jobs=(3, 6))
        for j in range(10):
            fault = plan.mining_fault("s", j)
            if 3 <= j < 6:
                assert fault is not None and fault.kind == MiningFault.RAISE
            else:
                assert fault is None  # all rates are zero outside the window

    def test_node_drop_schedule(self):
        plan = FaultPlan(drop_nodes=((1, 500), (2, 800)))
        assert plan.has_node_drops
        assert not plan.should_drop_node("s", 1, 499)
        assert plan.should_drop_node("s", 1, 500)
        assert not plan.should_drop_node("s", 2, 500)
        assert plan.should_drop_node("s", 2, 801)
        assert not plan.should_drop_node("s", 0, 10**9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="rates"):
            FaultPlan(mining_failure_rate=0.8, mining_delay_rate=0.3)
        with pytest.raises(ValueError, match="fail_jobs"):
            FaultPlan(fail_jobs=(5, 2))
        with pytest.raises(ValueError, match="mining_delay_ops"):
            FaultPlan(mining_delay_rate=0.1, mining_delay_ops=-1)

    def test_spec_string_round_trip(self):
        plan = parse_fault_spec(
            "seed=7, mining_failure_rate=0.25, mining_delay_ops=40,"
            "fail_jobs=3:9, drop_nodes=1@500+2@800, streams=a+b"
        )
        assert plan.seed == 7
        assert plan.mining_failure_rate == 0.25
        assert plan.mining_delay_ops == 40
        assert plan.fail_jobs == (3, 9)
        assert plan.drop_nodes == ((1, 500), (2, 800))
        assert plan.streams == frozenset({"a", "b"})

    @pytest.mark.parametrize("text", ["", "null", "NONE", "off"])
    def test_null_spellings(self, text):
        assert parse_fault_spec(text) is NULL_FAULT_PLAN

    @pytest.mark.parametrize("text", [
        "bogus=1", "seed", "seed=x", "fail_jobs=9", "drop_nodes=1:500",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    def test_resolve_fault_plan(self):
        assert resolve_fault_plan(None) is NULL_FAULT_PLAN
        assert resolve_fault_plan("seed=3").seed == 3
        plan = FaultPlan(seed=9)
        assert resolve_fault_plan(plan) is plan
        with pytest.raises(ValueError, match="fault_plan"):
            resolve_fault_plan(42)

    def test_null_plan_is_inert(self):
        assert not NULL_FAULT_PLAN.active
        assert not NULL_FAULT_PLAN.has_node_drops
        assert NULL_FAULT_PLAN.mining_fault("s", 0) is None
        assert not NULL_FAULT_PLAN.should_drop_node("s", 0, 10**9)

    def test_config_env_flow(self):
        cfg = build_config(
            env={"REPRO_FAULT_PLAN": "seed=3,mining_failure_rate=0.1"}
        )
        assert resolve_fault_plan(cfg.fault_plan).seed == 3
        # The default stays fault-free.
        assert build_config(env={}).fault_plan is None

    def test_config_validation_rejects_bad_plans(self):
        with pytest.raises(ValueError):
            build_config(env={}, fault_plan="bogus=1")
        with pytest.raises(ValueError, match="fault_quarantine_threshold"):
            build_config(env={}, fault_quarantine_threshold=0)
        with pytest.raises(ValueError, match="mining_deadline_tokens"):
            build_config(env={}, mining_deadline_tokens=0)

    def test_chaos_profile_validates_and_is_active(self):
        cfg = build_config(profile="chaos", env={})
        plan = resolve_fault_plan(cfg.fault_plan)
        assert plan.active
        assert cfg.fault_quarantine_threshold == 4

    def test_fault_plans_registry_surfaced(self):
        assert api.registries()["fault_plans"] is FAULT_PLANS
        assert FAULT_PLANS["null"] is NullFaultPlan
        assert FAULT_PLANS["seeded"] is FaultPlan


# ---------------------------------------------------------------------------
# Job-level containment (standalone JobExecutor)
# ---------------------------------------------------------------------------
class TestJobContainment:
    def test_real_mining_exception_is_contained(self):
        def broken(tokens, min_length):
            raise RuntimeError("suffix array exploded")

        executor = JobExecutor(repeats_algorithm=broken, memo_capacity=8)
        job = executor.submit(REPEATING_WINDOW, MIN_LENGTH, now_op=0)
        assert job.degraded
        assert job.result == []
        assert executor.mining_failures == 1
        assert executor.degraded_jobs == 1
        # The failure never touched the memo.
        assert len(executor.memo) == 0

    def test_injected_raise_window_then_recovery(self):
        executor = JobExecutor(
            fault_plan=FaultPlan(fail_jobs=(0, 2)), stream_key="t"
        )
        first = executor.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        second = executor.submit(REPEATING_WINDOW, MIN_LENGTH, 100)
        third = executor.submit(REPEATING_WINDOW, MIN_LENGTH, 200)
        assert first.degraded and second.degraded
        assert first.result == [] and second.result == []
        assert not third.degraded
        assert third.result  # healthy job found the real repeats
        assert executor.mining_failures == 2

    def test_soft_deadline_degrades_oversized_windows(self):
        executor = JobExecutor(deadline_tokens=10)
        big = executor.submit(REPEATING_WINDOW, MIN_LENGTH, 0)  # 40 tokens
        small = executor.submit(REPEATING_WINDOW[:10], MIN_LENGTH, 100)
        assert big.degraded and big.result == []
        assert not small.degraded
        assert executor.deadline_overruns == 1
        # Over-budget windows are not breaker failures.
        assert executor.breaker.consecutive_failures == 0
        assert executor.mining_failures == 0

    def test_delay_fault_shifts_completion_not_result(self):
        clean = JobExecutor()
        delayed = JobExecutor(
            fault_plan=FaultPlan(mining_delay_rate=1.0, mining_delay_ops=500),
            stream_key="t",
        )
        reference = clean.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        late = delayed.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        assert late.completes_at_op == reference.completes_at_op + 500
        assert not late.degraded
        assert late.result == reference.result
        assert delayed.degraded_jobs == 0

    def test_poisoned_result_never_enters_shared_memo(self):
        """The memo regression: tenant A's failure must not cache an
        empty result that answers tenant B's identical window."""
        memo = MiningMemo(capacity=8)
        faulty = JobExecutor(
            memo=memo, stream_key="a",
            fault_plan=FaultPlan(fail_jobs=(0, 1), streams=("a",)),
        )
        healthy = JobExecutor(memo=memo, stream_key="b")

        poisoned = faulty.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        assert poisoned.degraded and poisoned.result == []
        assert len(memo) == 0  # nothing cached by the failure

        real = healthy.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        assert not real.degraded and real.result
        assert healthy.memo_hits == 0  # computed, not served a poison hit

        # The recovered faulty tenant now gets the *real* cached answer.
        recovered = faulty.submit(REPEATING_WINDOW, MIN_LENGTH, 100)
        assert not recovered.degraded
        assert recovered.result == real.result
        assert faulty.memo_hits == 1

    def test_default_executor_runs_null_plan(self):
        executor = JobExecutor()
        assert executor.fault_plan is NULL_FAULT_PLAN
        assert not executor.quarantined
        job = executor.submit(REPEATING_WINDOW, MIN_LENGTH, 0)
        assert not job.degraded and job.result


# ---------------------------------------------------------------------------
# Quarantine: the circuit breaker and the service lane it protects
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trip_probe_and_recovery(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert not breaker.quarantined  # streak of 2 < threshold
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.quarantined and breaker.trips == 1
        # Backoff: threshold consecutive submits stay degraded.
        for _ in range(3):
            assert not breaker.allow()
        # Then exactly one probe is admitted.
        assert breaker.allow()
        assert breaker.probes == 1
        assert not breaker.allow()  # probe in flight, others stay degraded
        breaker.record_success()
        assert not breaker.quarantined
        assert breaker.recoveries == 1

    def test_failed_probe_doubles_backoff(self):
        breaker = CircuitBreaker(threshold=2)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.quarantined and breaker.backoff == 2
        for _ in range(2):
            assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.backoff == 4
        assert breaker.quarantined

    def test_backoff_is_capped(self):
        breaker = CircuitBreaker(threshold=2)
        for _ in range(2):
            breaker.record_failure()
        for _ in range(20):  # repeatedly fail probes
            while not breaker.allow():
                pass
            breaker.record_failure()
        assert breaker.backoff == MAX_PROBE_BACKOFF

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.quarantined

    @pytest.mark.parametrize("threshold", [None, 0])
    def test_disabled_breaker_never_quarantines(self, threshold):
        breaker = CircuitBreaker(threshold)
        for _ in range(100):
            assert breaker.allow()
            breaker.record_failure()
        assert not breaker.quarantined
        assert breaker.consecutive_failures == 100


class TestLaneQuarantine:
    def _shared(self, fail_hi, threshold=3):
        return SharedJobExecutor(
            memo_capacity=0,
            fault_plan=FaultPlan(fail_jobs=(0, fail_hi)),
            quarantine_threshold=threshold,
        )

    def test_lane_trips_serves_passthrough_then_recovers(self):
        shared = self._shared(fail_hi=3, threshold=3)
        lane = shared.lane("t")
        # Three contained failures trip the lane's breaker.
        for op in range(3):
            job = lane.submit(REPEATING_WINDOW, MIN_LENGTH, op * 100)
            assert job.result == [] and job.degraded
        assert lane.quarantined
        assert shared.stats["quarantined"] == 1
        assert lane.mining_failures == 3
        # Quarantined submits resolve immediately: already materialized,
        # never enqueued, zero shared-scheduler cost.
        for op in range(3):  # backoff = max(2, threshold) = 3
            job = lane.submit(REPEATING_WINDOW, MIN_LENGTH, 300 + op * 100)
            assert job.materialized and job.degraded
            assert shared.outstanding == 0
        # The next submit is the probe; past the fail window it succeeds.
        probe = lane.submit(REPEATING_WINDOW, MIN_LENGTH, 700)
        assert not probe.materialized  # genuinely enqueued
        assert probe.result  # materializes healthy
        assert not probe.degraded
        assert not lane.quarantined
        assert lane.breaker.recoveries == 1
        assert shared.stats["quarantined"] == 0

    def test_failed_probe_requarantines_lane(self):
        shared = self._shared(fail_hi=1000, threshold=2)
        lane = shared.lane("t")
        op = 0

        def submit():
            nonlocal op
            op += 100
            job = lane.submit(REPEATING_WINDOW, MIN_LENGTH, op)
            return job.result is not None and job  # force materialization

        for _ in range(2):
            submit()
        assert lane.quarantined
        for _ in range(2):  # backoff
            assert submit().materialized
        submit()  # the probe -- still in the fail window, fails
        assert lane.quarantined
        assert lane.breaker.backoff == 4

    def test_quarantine_is_per_lane(self):
        shared = SharedJobExecutor(
            memo_capacity=0,
            fault_plan=FaultPlan(fail_jobs=(0, 1000), streams=("sick",)),
            quarantine_threshold=2,
        )
        sick = shared.lane("sick")
        healthy = shared.lane("healthy")
        for op in range(3):
            sick.submit(REPEATING_WINDOW, MIN_LENGTH, op * 100).result
            job = healthy.submit(REPEATING_WINDOW, MIN_LENGTH, op * 100)
            assert job.result and not job.degraded
        assert sick.quarantined
        assert not healthy.quarantined
        assert shared.stats["quarantined"] == 1

    def test_lane_deadline_overrun_not_a_breaker_failure(self):
        shared = SharedJobExecutor(
            memo_capacity=0, deadline_tokens=10, quarantine_threshold=2
        )
        lane = shared.lane("t")
        for op in range(4):
            job = lane.submit(REPEATING_WINDOW, MIN_LENGTH, op * 100)
            assert job.degraded and job.materialized
        assert lane.deadline_overruns == 4
        assert not lane.quarantined
        assert lane.breaker.consecutive_failures == 0


# ---------------------------------------------------------------------------
# Session lifecycle: SessionClosedError and exception-safe teardown
# ---------------------------------------------------------------------------
class TestSessionClosedError:
    def test_exception_shape(self):
        err = SessionClosedError("tenant-1")
        assert err.session_id == "tenant-1"
        assert isinstance(err, KeyError) and isinstance(err, RuntimeError)
        assert "tenant-1" in str(err)

    def test_service_handle_ops_after_close(self, app_streams):
        service = ApopheniaService(FAST_CONFIG)
        handle = service.open_session("t")
        iteration, task = app_streams["jacobi"][0]
        handle.execute_task(task)
        service.close_session("t")
        for op in (lambda: handle.execute_task(task),
                   lambda: handle.set_iteration(1),
                   lambda: handle.flush()):
            with pytest.raises(SessionClosedError) as excinfo:
                op()
            assert excinfo.value.session_id == "t"

    def test_double_close_carries_session_key(self):
        service = ApopheniaService(FAST_CONFIG)
        service.open_session("t")
        service.close_session("t")
        with pytest.raises(SessionClosedError) as excinfo:
            service.close_session("t")
        assert excinfo.value.session_id == "t"
        # Compatible with the historical double-close contract.
        with pytest.raises(KeyError, match="unknown or already-closed"):
            service.close_session("t")

    @pytest.mark.parametrize("backend", ["standalone", "service"])
    def test_facade_ops_after_close(self, backend, app_streams):
        session = open_session("t", backend=backend, config=FAST_CONFIG)
        _, task = app_streams["jacobi"][0]
        session.submit(task)
        session.close()
        for op in (lambda: session.submit(task),
                   lambda: session.set_iteration(1),
                   lambda: session.flush(),
                   lambda: session.stats(),
                   lambda: session.snapshot(),
                   lambda: session.decision_trace()):
            with pytest.raises(SessionClosedError) as excinfo:
                op()
            assert excinfo.value.session_id == "t"

    def test_replicated_handle_after_close(self, app_streams):
        backend = ReplicatedBackend(REPLICATED_CONFIG)
        handle = backend.open_session("r")
        _, task = app_streams["jacobi"][0]
        handle.execute_task(task)
        backend.close_session("r")
        with pytest.raises(SessionClosedError):
            handle.execute_task(task)
        with pytest.raises(SessionClosedError):
            handle.flush()
        with pytest.raises(SessionClosedError):
            backend.close_session("r")


class TestTeardownUnderFaults:
    def test_quarantined_session_closes_clean(self, app_streams):
        """Closing (or evicting) a quarantined tenant must release its
        lane, runtime, and handle exactly like a healthy one."""
        factory = RuntimeSessionFactory()
        config = FAST_CONFIG.with_overrides(
            fault_plan=FaultPlan(fail_jobs=(0, 10**6), streams=("sick",)),
            fault_quarantine_threshold=2,
        )
        service = ApopheniaService(config, runtime_factory=factory)
        service.open_session("sick")
        service.open_session("fine")
        for sid in ("sick", "fine"):
            for iteration, task in app_streams["stencil"][:400]:
                service.set_iteration(sid, iteration)
                service.execute_task(sid, task)
        assert service.session("sick").lane.quarantined
        assert not service.session("fine").lane.quarantined
        service.close_session("sick")
        service.close_session("fine")
        assert len(service.sessions) == 0
        assert len(service.executor.lanes) == 0
        assert len(factory) == 0
        assert service.executor.outstanding == 0

    def test_close_exception_safe_with_faulty_lane(self, app_streams,
                                                   monkeypatch):
        factory = RuntimeSessionFactory()
        config = FAST_CONFIG.with_overrides(
            fault_plan=FaultPlan(seed=5, mining_failure_rate=0.5),
        )
        service = ApopheniaService(config, runtime_factory=factory)
        handle = service.open_session("crashy")
        for iteration, task in app_streams["jacobi"][:200]:
            service.set_iteration("crashy", iteration)
            service.execute_task("crashy", task)

        def boom():
            raise RuntimeError("flush failed")

        monkeypatch.setattr(handle.processor, "flush", boom)
        with pytest.raises(RuntimeError, match="flush failed"):
            service.close_session("crashy")
        assert handle.closed
        assert len(service.sessions) == 0
        assert len(service.executor.lanes) == 0
        assert len(factory) == 0


# ---------------------------------------------------------------------------
# Replicated degradation: surviving a dropped node
# ---------------------------------------------------------------------------
class TestReplicatedNodeDrop:
    DROP_PLAN = FaultPlan(drop_nodes=((2, 400),), streams=("drop",))

    def _drive(self, handle, stream):
        for iteration, task in stream:
            handle.set_iteration(iteration)
            handle.execute_task(task)
        handle.flush()

    def test_session_survives_scheduled_node_drop(self, app_streams):
        config = REPLICATED_CONFIG.with_overrides(fault_plan=self.DROP_PLAN)
        backend = ReplicatedBackend(config)
        handle = backend.open_session("drop")
        self._drive(handle, app_streams["s3d"])
        assert handle.num_nodes == 3
        assert handle.live_nodes == 2
        assert handle.dropped == {2}
        # The survivors kept byte-identical agreement through the drop.
        assert handle.decisions_agree()
        assert handle.processor.decision_trace()  # still actually tracing
        stats = backend.backend_stats
        assert stats["live_nodes"] == 2
        assert stats["nodes_dropped"] == 1
        backend.close_session("drop")
        assert handle.coordinator.agreement_table_size == 0
        # The drop survives in the lifetime counters.
        assert backend.backend_stats["nodes_dropped"] == 1

    def test_drop_is_decision_neutral_for_survivors(self, app_streams):
        """Losing a replica only changes who consumes agreements; the
        survivors' decision stream must be byte-identical to a run where
        no node ever died."""
        stream = app_streams["jacobi"]
        clean_backend = ReplicatedBackend(REPLICATED_CONFIG)
        clean = clean_backend.open_session("drop")
        self._drive(clean, stream)
        reference = clean.decision_trace()
        clean_backend.close_session("drop")

        config = REPLICATED_CONFIG.with_overrides(fault_plan=self.DROP_PLAN)
        backend = ReplicatedBackend(config)
        handle = backend.open_session("drop")
        self._drive(handle, stream)
        assert handle.live_nodes == 2
        assert handle.decision_trace() == reference
        assert handle.decisions_agree()
        backend.close_session("drop")

    def test_manual_drop_guards(self, app_streams):
        backend = ReplicatedBackend(REPLICATED_CONFIG)
        handle = backend.open_session("m")
        with pytest.raises(ValueError, match="not live"):
            handle.drop_node(7)
        assert handle.drop_node(2) == 2
        assert handle.drop_node(1) == 1
        with pytest.raises(ValueError, match="last live"):
            handle.drop_node(0)
        # Node 0 still serves alone.
        self._drive(handle, app_streams["jacobi"][:300])
        assert handle.live_nodes == 1
        assert handle.decisions_agree()  # trivially, one live node
        backend.close_session("m")

    def test_session_stats_carry_live_nodes(self, app_streams):
        config = REPLICATED_CONFIG.with_overrides(fault_plan=self.DROP_PLAN)
        with open_session("drop", backend=ReplicatedBackend(config)) as s:
            for iteration, task in app_streams["stencil"]:
                s.set_iteration(iteration)
                s.submit(task)
            s.flush()
            stats = s.stats()
            assert stats.nodes == 3
            assert stats.live_nodes == 2

    def test_injected_mining_faults_hit_all_replicas_identically(
        self, app_streams
    ):
        """One plan keyed by the session id: every replica degrades the
        same jobs, so the agreement invariant survives the faults."""
        config = REPLICATED_CONFIG.with_overrides(
            fault_plan=FaultPlan(seed=11, mining_failure_rate=0.3),
        )
        with open_session(
            "chaotic", backend="replicated", config=config
        ) as session:
            for iteration, task in app_streams["cfd"]:
                session.set_iteration(iteration)
                session.submit(task)
            session.flush()
            handle = session.handle
            failures = {
                p.executor.mining_failures for p in handle.processors
            }
            assert len(failures) == 1  # identical on every node
            assert failures.pop() > 0  # and the plan actually fired
            assert handle.decisions_agree()


# ---------------------------------------------------------------------------
# The headline chaos property
# ---------------------------------------------------------------------------
class TestChaosProperty:
    #: Faults scoped to half the tenant population; seeded, so the whole
    #: chaos run is deterministic end to end.
    CHAOS_PLAN = FaultPlan(
        seed=1234,
        mining_failure_rate=0.15,
        mining_overrun_rate=0.1,
        mining_delay_rate=0.15,
        mining_delay_ops=40,
        streams=("stencil-faulty", "cfd-faulty"),
    )

    def _streams(self, app_streams):
        return {
            "s3d-clean": app_streams["s3d"],
            "stencil-faulty": app_streams["stencil"],
            "jacobi-clean": app_streams["jacobi"],
            "cfd-faulty": app_streams["cfd"],
        }

    def test_service_survives_and_faultfree_tenants_unchanged(
        self, app_streams
    ):
        streams = self._streams(app_streams)
        clean, _, _ = run_service(streams, FAST_CONFIG)
        chaotic, _, service = run_service(
            streams,
            FAST_CONFIG.with_overrides(
                fault_plan=self.CHAOS_PLAN, fault_quarantine_threshold=4
            ),
        )
        # The service survived with every tenant's stream valid.
        for sid, outcome in chaotic.items():
            assert _conserves_tasks(outcome), sid
        # Faults actually fired on the targeted tenants...
        stats = service.stats
        assert stats["mining_failures"] > 0
        assert stats["degraded_jobs"] > 0
        assert stats["deadline_overruns"] > 0
        # ...and only there: fault-free tenants are byte-identical to
        # their no-fault runs, decisions included.
        for sid in ("s3d-clean", "jacobi-clean"):
            assert chaotic[sid].stats == clean[sid].stats, sid
            assert chaotic[sid].decision_trace == clean[sid].decision_trace
        # The faulty tenants genuinely degraded (not silently unscathed).
        lanes = service.executor.lanes
        assert all(
            lanes[sid].degraded_jobs > 0
            for sid in ("stencil-faulty", "cfd-faulty")
        )
        assert all(
            lanes[sid].degraded_jobs == 0
            for sid in ("s3d-clean", "jacobi-clean")
        )

    def test_chaos_runs_are_reproducible(self, app_streams):
        streams = self._streams(app_streams)
        config = FAST_CONFIG.with_overrides(fault_plan=self.CHAOS_PLAN)
        first, _, first_service = run_service(streams, config)
        second, _, second_service = run_service(streams, config)
        for sid in streams:
            assert first[sid].stats == second[sid].stats, sid
            assert first[sid].decision_trace == second[sid].decision_trace
        for key in ("mining_failures", "degraded_jobs", "deadline_overruns"):
            assert first_service.stats[key] == second_service.stats[key]

    def test_degradation_gauges_reach_the_stats_facade(self, app_streams):
        config = FAST_CONFIG.with_overrides(
            fault_plan=FaultPlan(seed=2, mining_failure_rate=0.3),
        )
        with open_session(
            "gauged", backend="service", config=config
        ) as session:
            for iteration, task in app_streams["s3d"]:
                session.set_iteration(iteration)
                session.submit(task)
            session.flush()
            stats = session.stats()
            assert stats.mining_failures > 0
            assert stats.degraded_jobs >= stats.mining_failures
            assert stats.live_nodes == 1
            assert isinstance(stats.quarantined, bool)

    def test_delay_only_chaos_stays_healthy(self, app_streams):
        """Pure delay faults shift job completions without any failure:
        no degraded jobs, conservation holds, the stream stays valid."""
        config = FAST_CONFIG.with_overrides(
            fault_plan=FaultPlan(
                seed=3, mining_delay_rate=0.5, mining_delay_ops=60
            ),
        )
        outcomes, _, service = run_service(
            {"delayed": app_streams["jacobi"]}, config
        )
        assert _conserves_tasks(outcomes["delayed"])
        assert service.stats["mining_failures"] == 0
        assert service.stats["degraded_jobs"] == 0
