"""Cross-module property tests: the invariants that make Apophenia safe.

The central correctness property of automatic tracing is *transparency*:
whatever Apophenia decides, every task the application launched reaches
the runtime exactly once, in launch order, with an identical dependence
structure. These tests drive the full stack with randomized synthetic
applications (hypothesis generates loop structures, irregular fragments,
and region usage) and check the invariants end to end.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.processor import ApopheniaConfig, ApopheniaProcessor
from repro.runtime.privilege import Privilege
from repro.runtime.runtime import Runtime
from repro.runtime.task import task

RO = Privilege.READ_ONLY
RW = Privilege.READ_WRITE
WD = Privilege.WRITE_DISCARD

FAST = ApopheniaConfig(
    min_trace_length=3,
    batchsize=150,
    multi_scale_factor=20,
    job_base_latency_ops=8,
    initial_ingest_margin_ops=16,
)


def synthetic_app(runtime, executor, structure, iterations):
    """Issue a randomized iterative app.

    ``structure`` is a list of (kind index, region pair) steps per
    iteration; every ``noise_period`` iterations an extra irregular task
    is issued.
    """
    regions = [runtime.forest.create_region((16,)) for _ in range(6)]
    steps, noise_period = structure
    launched = []
    for i in range(iterations):
        runtime.set_iteration(i)
        for (kind, (a, b)) in steps:
            t = task(f"K{kind}", (regions[a], RO), (regions[b], RW))
            executor.execute_task(t)
            launched.append(t.uid)
        if noise_period and i % noise_period == 0:
            t = task(f"NOISE{i % 3}", (regions[0], RW))
            executor.execute_task(t)
            launched.append(t.uid)
    return launched


@st.composite
def app_structures(draw):
    n_steps = draw(st.integers(2, 6))
    steps = [
        (
            draw(st.integers(0, 4)),
            (draw(st.integers(0, 5)), draw(st.integers(0, 5))),
        )
        for _ in range(n_steps)
    ]
    noise_period = draw(st.sampled_from([0, 3, 7]))
    return steps, noise_period


class TestTransparency:
    @given(app_structures(), st.integers(20, 60))
    @settings(max_examples=25, deadline=None)
    def test_every_task_forwarded_once_in_order(self, structure, iterations):
        runtime = Runtime(analysis_mode="fast")
        processor = ApopheniaProcessor(runtime, FAST)
        launched = synthetic_app(runtime, processor, structure, iterations)
        processor.flush()
        forwarded = [r.uid for r in runtime.task_log]
        assert forwarded == launched

    @given(app_structures())
    @settings(max_examples=15, deadline=None)
    def test_no_trace_mismatches_ever(self, structure):
        """Apophenia only replays sequences it has verified token-by-token,
        so the tracing engine must never observe a mismatch."""
        runtime = Runtime(analysis_mode="fast", mismatch_policy="error")
        processor = ApopheniaProcessor(runtime, FAST)
        synthetic_app(runtime, processor, structure, 80)
        processor.flush()
        assert runtime.engine.mismatches == 0

    @given(app_structures())
    @settings(max_examples=10, deadline=None)
    def test_dependence_counts_match_untraced(self, structure):
        """Tracing must not change the dependence structure."""
        rt_auto = Runtime(analysis_mode="full")
        proc = ApopheniaProcessor(rt_auto, FAST)
        synthetic_app(rt_auto, proc, structure, 40)
        proc.flush()

        rt_direct = Runtime(analysis_mode="full")
        synthetic_app(rt_direct, rt_direct, structure, 40)

        auto_uids = [r.uid for r in rt_auto.task_log]
        direct_uids = [r.uid for r in rt_direct.task_log]
        assert len(auto_uids) == len(direct_uids)
        for ua, ud in zip(auto_uids, direct_uids):
            assert len(rt_auto.dependences[ua].depends_on) == len(
                rt_direct.dependences[ud].depends_on
            )

    @given(app_structures())
    @settings(max_examples=10, deadline=None)
    def test_periodic_streams_reach_high_coverage(self, structure):
        steps, noise_period = structure
        if noise_period:
            return  # only pure loops guarantee high coverage quickly
        runtime = Runtime(analysis_mode="fast")
        processor = ApopheniaProcessor(runtime, FAST)
        synthetic_app(runtime, processor, structure, 120)
        processor.flush()
        assert runtime.traced_fraction() > 0.5

    def test_virtual_time_monotone_under_tracing(self):
        """Tracing can only improve (or match) virtual completion time on
        an analysis-bound stream."""
        def run(auto):
            runtime = Runtime(analysis_mode="fast")
            executor = (
                ApopheniaProcessor(runtime, FAST) if auto else runtime
            )
            structure = ([(0, (0, 1)), (1, (1, 2)), (2, (2, 0))], 0)
            synthetic_app(runtime, executor, structure, 150)
            if auto:
                executor.flush()
            return runtime.total_time

        assert run(auto=True) < run(auto=False)
