"""The session-persistence property suite (``persist`` marker).

The headline property of the evict-without-forgetting work: a session
dehydrated at a flush fence and hydrated into a fresh backend produces a
subsequent decision stream **byte-identical** to a session that was
never evicted -- per application, on all three backends. Around it: the
canonical-serialization contract (``loads(dumps())`` round-trips to the
same bytes), digest tamper detection, deterministic eviction under the
candidate-lifecycle knobs, the ``remove_candidate`` / in-flight-serving
reconciliation under both match engines, the ``submit_many`` batch
helper's decision-neutrality, and the service's evict-then-readmit warm
start through the token-budgeted spill store.
"""

import json

import pytest

from repro.api import (
    PersistFormatError,
    SessionClosedError,
    SessionState,
    SessionStateStore,
    open_session,
)
from repro.core.processor import ApopheniaConfig, ApopheniaProcessor
from repro.core.repeats import Repeat
from repro.core.replayer import TraceReplayer
from repro.experiments.multi_tenant import capture_stream
from repro.persist import dehydrate, hydrate_processor
from repro.runtime.runtime import Runtime
from repro.service import ApopheniaService

pytestmark = pytest.mark.persist

#: Same sizing as the api/service suites: small enough for tier-1,
#: large enough to mine candidates and fire traces on both stream halves.
FAST_CONFIG = ApopheniaConfig(
    min_trace_length=3,
    batchsize=200,
    multi_scale_factor=25,
    job_base_latency_ops=10,
    initial_ingest_margin_ops=20,
)

#: Replicated runs reuse the fast sizing so hydrate parity is checked
#: under real (if quick) agreement-protocol work.
REPLICATED_CONFIG = FAST_CONFIG.with_overrides(num_nodes=3)

PARITY_APPS = ("s3d", "stencil", "jacobi", "cfd", "generative")

BACKENDS = ("standalone", "service", "replicated")

#: The dehydrate fence sits mid-stream: both halves must be long enough
#: to mine and fire, or "parity" would be vacuous.
SPLIT = 350


@pytest.fixture(scope="module")
def app_streams():
    """One small captured stream per application type."""
    return {
        name: capture_stream(name, 700, task_scale=0.05)
        for name in PARITY_APPS
    }


def _fast_runtime():
    return Runtime(
        analysis_mode="fast", mismatch_policy="fallback", keep_task_log=False
    )


def _open(backend, session_id, state=None):
    """One session on the named backend, optionally warm-started."""
    if backend == "standalone":
        return open_session(
            session_id, config=FAST_CONFIG, runtime=_fast_runtime(),
            state=state,
        )
    if backend == "service":
        return open_session(
            session_id, backend=ApopheniaService(FAST_CONFIG), state=state
        )
    return open_session(
        session_id, backend="replicated", config=REPLICATED_CONFIG,
        state=state,
    )


def _drive(session, stream):
    for iteration, task in stream:
        session.set_iteration(iteration)
        session.submit(task)


def _uninterrupted(backend, app_name, stream):
    """Run A: one session across both halves, flushed at the fence."""
    with _open(backend, app_name) as session:
        _drive(session, stream[:SPLIT])
        session.flush()
        _drive(session, stream[SPLIT:])
        session.flush()
        return session.snapshot()


def _evicted_and_rehydrated(backend, app_name, stream):
    """Run B: dehydrate at the fence, resume on a *fresh* backend."""
    with _open(backend, app_name) as session:
        _drive(session, stream[:SPLIT])
        state = session.dehydrate()  # flushes: the same fence as run A
    blob = state.dumps()
    restored = SessionState.loads(blob)
    with _open(backend, app_name, state=restored) as session:
        _drive(session, stream[SPLIT:])
        session.flush()
        stats = session.stats()
        handle = session.handle
        snapshot = session.snapshot()
    return snapshot, stats, blob, handle


class TestWarmStartParity:
    """The acceptance property: eviction no longer forgets."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("app_name", PARITY_APPS)
    def test_hydrated_decisions_match_uninterrupted(
        self, app_streams, backend, app_name
    ):
        stream = app_streams[app_name]
        uninterrupted = _uninterrupted(backend, app_name, stream)
        hydrated, stats, _, handle = _evicted_and_rehydrated(
            backend, app_name, stream
        )
        assert hydrated.decisions == uninterrupted.decisions
        assert uninterrupted.decision_trace, app_name  # traces really fired
        assert stats.warm_starts == 1
        if backend == "replicated":
            assert handle.decisions_agree(), handle.decision_traces()


class TestRoundTripByteStability:
    """``loads(dumps())`` is the identity on bytes, per backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_state_round_trips_byte_identically(self, app_streams, backend):
        _, _, blob, _ = _evicted_and_rehydrated(
            backend, "s3d", app_streams["s3d"]
        )
        state = SessionState.loads(blob)
        assert state.dumps() == blob
        assert SessionState.loads(state.dumps()).dumps() == blob
        assert state.verify() is state
        assert state.payload["digest"] == state.stable_digest()

    def test_dump_load_file_round_trip(self, app_streams, tmp_path):
        with _open("standalone", "s3d") as session:
            _drive(session, app_streams["s3d"][:SPLIT])
            state = session.dehydrate()
        path = state.dump(tmp_path / "s3d.state.json")
        assert SessionState.load(path).dumps() == state.dumps()


class TestDigestTamperDetection:
    def _state(self, app_streams):
        with _open("standalone", "s3d") as session:
            _drive(session, app_streams["s3d"][:SPLIT])
            return session.dehydrate()

    def test_tampered_payload_fails_loads(self, app_streams):
        payload = json.loads(self._state(app_streams).dumps())
        payload["replayer"]["counters"]["tasks_seen"] += 1
        with pytest.raises(PersistFormatError, match="digest"):
            SessionState.loads(json.dumps(payload))

    def test_tampered_candidate_fails_verify(self, app_streams):
        state = self._state(app_streams)
        state.payload["candidates"][0]["occurrences"] += 1
        with pytest.raises(PersistFormatError, match="digest"):
            state.verify()

    def test_missing_field_rejected(self, app_streams):
        payload = json.loads(self._state(app_streams).dumps())
        del payload["rotations"]
        with pytest.raises(PersistFormatError, match="rotations"):
            SessionState.loads(json.dumps(payload))

    def test_unknown_version_rejected(self, app_streams):
        payload = json.loads(self._state(app_streams).dumps())
        payload["version"] = 99
        with pytest.raises(PersistFormatError, match="version"):
            SessionState.loads(json.dumps(payload))

    def test_non_json_rejected(self):
        with pytest.raises(PersistFormatError, match="JSON"):
            SessionState.loads("not a document")


class TestEvictionDeterminism:
    """The lifecycle knobs evict by intrinsic rank: two identical runs
    evict identically, and generous bounds change nothing at all."""

    def _run(self, stream, config):
        processor = ApopheniaProcessor(_fast_runtime(), config)
        for iteration, task in stream:
            processor.set_iteration(iteration)
            processor.execute_task(task)
        processor.flush()
        replayer = processor.replayer
        survivors = sorted(
            (c.trace_id, c.tokens)
            for c in replayer.trie.candidates.values()
        )
        return (
            processor.decision_trace(),
            replayer.stats.candidates_evicted,
            survivors,
        )

    def test_capacity_eviction_is_deterministic(self, app_streams):
        config = FAST_CONFIG.with_overrides(max_candidates=2)
        stream = app_streams["s3d"]
        first = self._run(stream, config)
        second = self._run(stream, config)
        assert first == second
        assert first[1] > 0  # the bound actually bit
        assert len(first[2]) <= 2

    def test_staleness_eviction_is_deterministic(self, app_streams):
        config = FAST_CONFIG.with_overrides(candidate_staleness_horizon=150)
        stream = app_streams["stencil"]
        assert self._run(stream, config) == self._run(stream, config)

    def test_generous_bounds_are_decision_neutral(self, app_streams):
        stream = app_streams["s3d"]
        baseline = self._run(stream, FAST_CONFIG)
        bounded = self._run(
            stream,
            FAST_CONFIG.with_overrides(
                max_candidates=10**6, candidate_staleness_horizon=10**9
            ),
        )
        assert bounded[0] == baseline[0]
        assert bounded[1] == 0
        assert bounded[2] == baseline[2]


@pytest.mark.parametrize("engine", ["scan", "automaton"])
class TestRemoveCandidateReconciliation:
    """Satellite audit: exact removal vs in-flight serving state, under
    both match engines."""

    class Harness:
        def __init__(self, engine, **kwargs):
            self.forwarded = []
            self.traces = []
            self.replayer = TraceReplayer(
                on_flush=self.forwarded.extend,
                on_trace=lambda c, i, tasks: (
                    self.traces.append(c.tokens),
                    self.forwarded.extend(tasks),
                ),
                match_engine=engine,
                **kwargs,
            )

        def feed(self, tokens):
            for i, token in enumerate(
                tokens, start=self.replayer.stream_index
            ):
                self.replayer.process((i, token), token)

    def test_removing_deferred_candidate_drops_the_hold(self, engine):
        h = self.Harness(engine, min_trace_length=2)
        h.replayer.ingest([Repeat("ab", [0, 5]), Repeat("abcd", [0, 10])])
        h.feed("ab")  # 'ab' completes and defers, hoping for 'abcd'
        deferred = h.replayer.deferred
        assert deferred is not None
        assert h.replayer.remove_candidate(deferred.candidate)
        # Committing the hold later would issue a trace for a ghost id
        # and re-walk a detached trie node; removal reconciles it away.
        assert h.replayer.deferred is None
        h.feed("xx")
        h.replayer.flush_all()
        assert ("a", "b") not in h.traces
        assert [t[0] for t in h.forwarded] == [0, 1, 2, 3]

    def test_removing_other_candidate_keeps_the_hold(self, engine):
        h = self.Harness(engine, min_trace_length=2)
        h.replayer.ingest([
            Repeat("ab", [0, 5]), Repeat("abcd", [0, 10]),
            Repeat("xy", [0, 5]),
        ])
        h.feed("ab")
        assert h.replayer.deferred is not None
        bystander = next(
            c for c in h.replayer.trie.candidates.values()
            if c.tokens == ("x", "y")
        )
        assert h.replayer.remove_candidate(bystander)
        assert h.replayer.deferred is not None  # unrelated removal
        h.replayer.flush_all()
        assert ("a", "b") in h.traces

    def test_removal_mid_partial_match_serves_cleanly(self, engine):
        h = self.Harness(engine, min_trace_length=3)
        h.replayer.ingest([Repeat("abc", [0, 3])])
        candidate = next(iter(h.replayer.trie.candidates.values()))
        h.feed("ab")  # a live partial match points into the candidate
        assert h.replayer.remove_candidate(candidate)
        h.feed("cabc")
        h.replayer.flush_all()
        assert not h.traces
        assert [t[0] for t in h.forwarded] == list(range(6))

    def test_double_removal_is_false(self, engine):
        h = self.Harness(engine, min_trace_length=2)
        h.replayer.ingest([Repeat("ab", [0, 2])])
        candidate = next(iter(h.replayer.trie.candidates.values()))
        assert h.replayer.remove_candidate(candidate)
        assert not h.replayer.remove_candidate(candidate)


class TestSubmitMany:
    """The batch helper is sugar, not semantics."""

    def test_parity_with_submit_loop(self, app_streams):
        tasks = [task for _, task in app_streams["jacobi"]]
        with _open("standalone", "loop") as session:
            for task in tasks:
                session.submit(task)
            session.flush()
            looped = session.snapshot()
        with _open("standalone", "batch") as session:
            submitted = session.submit_many(tasks)
            session.flush()
            batched = session.snapshot()
        assert submitted == len(tasks)
        assert batched.decisions == looped.decisions

    def test_accepts_any_iterable(self):
        with _open("standalone", "gen") as session:
            assert session.submit_many(iter([])) == 0

    def test_closed_session_raises(self):
        session = _open("standalone", "closed")
        session.close()
        with pytest.raises(SessionClosedError):
            session.submit_many([object()])
        with pytest.raises(SessionClosedError):
            session.dehydrate()


class TestServiceEvictReadmit:
    """LRU eviction spills into the state store; re-admission warm-starts."""

    def _service(self, budget):
        return ApopheniaService(
            FAST_CONFIG.with_overrides(
                max_sessions=1, session_state_budget=budget
            )
        )

    def test_evicted_tenant_resumes_byte_identically(self, app_streams):
        stream = app_streams["s3d"]
        service = self._service(budget=100_000)
        first = open_session("s3d", backend=service)
        _drive(first, stream[:SPLIT])
        first.flush()
        # A second tenant evicts s3d: dehydrated into the spill store,
        # not forgotten.
        other = open_session("stencil", backend=service)
        assert service.sessions_evicted == 1
        assert service.state_store.states_held == 1
        assert "s3d" in service.state_store
        # Re-admission pops the state and warm-starts (and stencil is
        # spilled in turn -- capacity is still one).
        resumed = open_session("s3d", backend=service)
        assert service.warm_starts == 1
        assert "s3d" not in service.state_store
        assert "stencil" in service.state_store
        # The learned trie is back before any new task arrives.
        assert resumed.handle.processor.replayer.trie.candidates
        _drive(resumed, stream[SPLIT:])
        resumed.flush()
        snapshot = resumed.snapshot()
        assert resumed.stats().warm_starts == 1
        resumed.close()
        other.close()
        # Byte-identical to a tenant that was never evicted.
        twin = _uninterrupted("service", "s3d", stream)
        assert snapshot.decisions == twin.decisions

    def test_oversize_state_is_rejected_and_restart_is_cold(
        self, app_streams
    ):
        stream = app_streams["s3d"]
        service = self._service(budget=10)  # nothing fits
        first = open_session("s3d", backend=service)
        _drive(first, stream[:SPLIT])
        open_session("stencil", backend=service)
        assert service.sessions_evicted == 1
        assert service.state_store.states_held == 0
        assert service.state_store.oversize_rejections == 1
        resumed = open_session("s3d", backend=service)
        assert service.warm_starts == 0
        assert not resumed.handle.processor.replayer.trie.candidates

    def test_stats_surface_gauges(self, app_streams):
        service = self._service(budget=100_000)
        session = open_session("s3d", backend=service)
        _drive(session, app_streams["s3d"][:SPLIT])
        open_session("stencil", backend=service)
        stats = service.stats
        assert stats["states_held"] == 1
        assert stats["state_tokens_held"] > 0
        assert stats["warm_starts"] == 0


class _StubState:
    def __init__(self, token_cost):
        self.token_cost = token_cost


class TestSessionStateStore:
    def test_lru_eviction_respects_budget(self):
        store = SessionStateStore(token_budget=100)
        store.put("a", _StubState(60))
        store.put("b", _StubState(50))  # evicts a (60 + 50 > 100)
        assert "a" not in store
        assert "b" in store
        assert store.tokens_held == 50
        assert store.evictions == 1

    def test_get_refreshes_recency(self):
        store = SessionStateStore(token_budget=100)
        store.put("a", _StubState(40))
        store.put("b", _StubState(40))
        assert store.get("a") is not None  # a becomes most-recent
        store.put("c", _StubState(40))  # b, not a, is evicted
        assert "a" in store
        assert "b" not in store

    def test_restore_releases_tokens(self):
        store = SessionStateStore(token_budget=100)
        store.put("a", _StubState(70))
        assert store.pop("a").token_cost == 70
        assert store.tokens_held == 0
        assert store.pop("a") is None
        assert store.states_restored == 1

    def test_replacement_releases_old_cost(self):
        store = SessionStateStore(token_budget=100)
        store.put("a", _StubState(70))
        store.put("a", _StubState(20))
        assert store.tokens_held == 20
        assert len(store) == 1

    def test_unbounded_store_never_evicts(self):
        store = SessionStateStore(token_budget=None)
        for i in range(50):
            store.put(f"s{i}", _StubState(1000))
        assert store.states_held == 50
        assert store.evictions == 0


class TestHydrateGuards:
    def _state(self, app_streams):
        with _open("standalone", "s3d") as session:
            _drive(session, app_streams["s3d"][:SPLIT])
            return session.dehydrate()

    def test_config_mismatch_rejected(self, app_streams):
        state = self._state(app_streams)
        mismatched = ApopheniaProcessor(
            _fast_runtime(), FAST_CONFIG.with_overrides(min_trace_length=5)
        )
        with pytest.raises(PersistFormatError, match="min_trace_length"):
            hydrate_processor(mismatched, state)

    def test_non_fresh_processor_rejected(self, app_streams):
        state = self._state(app_streams)
        processor = ApopheniaProcessor(_fast_runtime(), FAST_CONFIG)
        _, task = app_streams["s3d"][0]
        processor.execute_task(task)
        with pytest.raises(PersistFormatError, match="fresh"):
            hydrate_processor(processor, state)

    def test_dehydrate_accepts_bare_processor(self, app_streams):
        processor = ApopheniaProcessor(_fast_runtime(), FAST_CONFIG)
        for iteration, task in app_streams["s3d"][:SPLIT]:
            processor.set_iteration(iteration)
            processor.execute_task(task)
        state = dehydrate(processor, session_id="bare")
        assert state.session_id == "bare"
        assert state.num_candidates == len(
            processor.replayer.trie.candidates
        )
