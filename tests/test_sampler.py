"""Ruler-function multi-scale sampling (Section 4.4, Figure 5)."""

import pytest

from repro.core.sampler import MultiScaleSampler, ruler, ruler_powers


class TestRuler:
    def test_first_values(self):
        # ruler(1..8) = 0 1 0 2 0 1 0 3
        assert [ruler(k) for k in range(1, 9)] == [0, 1, 0, 2, 0, 1, 0, 3]

    def test_powers_figure5(self):
        # 2**ruler: 1 2 1 4 1 2 1 8 -- the Figure 5 schedule for size 8.
        assert ruler_powers(8) == [1, 2, 1, 4, 1, 2, 1, 8]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ruler(0)


class TestMultiScaleSampler:
    def test_figure5_schedule(self):
        """Buffer of 8, factor 1: slice sizes follow 1 2 1 4 1 2 1 8."""
        sampler = MultiScaleSampler(factor=1, capacity=8)
        sizes = [sampler.observe() for _ in range(8)]
        assert sizes == [1, 2, 1, 4, 1, 2, 1, 8]

    def test_factor_gates_triggers(self):
        sampler = MultiScaleSampler(factor=250, capacity=1000)
        sizes = [sampler.observe() for _ in range(1000)]
        triggers = [(i + 1, s) for i, s in enumerate(sizes) if s is not None]
        assert [t[0] for t in triggers] == [250, 500, 750, 1000]
        assert [t[1] for t in triggers] == [250, 500, 250, 1000]

    def test_slices_capped_at_capacity(self):
        sampler = MultiScaleSampler(factor=100, capacity=250)
        sizes = [s for s in (sampler.observe() for _ in range(2000)) if s]
        assert max(sizes) <= 250

    def test_schedule_is_periodic(self):
        sampler = MultiScaleSampler(factor=1, capacity=4)
        sizes = [sampler.observe() for _ in range(12)]
        assert sizes == [1, 2, 1, 4] * 3

    def test_full_buffer_sampled_regularly(self):
        """The largest slice (the full buffer) recurs, so long traces are
        eventually discoverable (the H2-H4/H5-H7 example of Figure 5)."""
        sampler = MultiScaleSampler(factor=1, capacity=8)
        sizes = [sampler.observe() for _ in range(32)]
        assert sizes.count(8) == 4

    def test_full_buffer_reached_at_paper_defaults(self):
        """factor=250, capacity=5000: the ratio (20) is not a power of two,
        yet every period must still end with a full-buffer slice --
        otherwise repeats longer than 4000 tokens are unfindable despite
        the 5000-token buffer."""
        sampler = MultiScaleSampler(factor=250, capacity=5000)
        sizes = [s for s in (sampler.observe() for _ in range(250 * 64)) if s]
        assert max(sizes) == 5000
        # Two full periods of 32 triggers, each ending at the capacity.
        assert len(sizes) == 64
        assert sizes[31] == 5000 and sizes[63] == 5000
        assert sizes.count(5000) == 2

    def test_full_buffer_reached_when_factor_does_not_divide(self):
        """ceil, not floor: capacity 5000 / factor 300 floors to 16 (a
        power of two) but 300 * 16 = 4800 still undershoots the buffer."""
        sampler = MultiScaleSampler(factor=300, capacity=5000)
        sizes = [s for s in (sampler.observe() for _ in range(300 * 32)) if s]
        assert max(sizes) == 5000
        assert sizes[-1] == 5000

    def test_ruler_shape_kept_for_non_power_of_two_ratio(self):
        """Extending the period preserves the ruler shape: every slice is
        factor * 2**ruler(k), capped at the capacity."""
        from repro.core.sampler import ruler

        factor, capacity = 250, 5000
        sampler = MultiScaleSampler(factor=factor, capacity=capacity)
        sizes = [s for s in (sampler.observe() for _ in range(250 * 32)) if s]
        expected = [
            min(factor * 2 ** ruler(k), capacity) for k in range(1, 33)
        ]
        assert sizes == expected

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MultiScaleSampler(factor=0, capacity=8)
        with pytest.raises(ValueError):
            MultiScaleSampler(factor=1, capacity=0)

    def test_total_work_bound(self):
        """Sampled work is O(n log n) tokens over n arrivals: the log^2
        bound of Section 4.4 given the O(n log n) miner."""
        import math

        factor, capacity = 10, 640
        sampler = MultiScaleSampler(factor=factor, capacity=capacity)
        n = 6400
        total = sum(s for s in (sampler.observe() for _ in range(n)) if s)
        bound = n * (math.log2(capacity / factor) + 2)
        assert total <= bound
