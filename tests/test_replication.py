"""Control replication: identical decisions across nodes (Section 5.1)."""

import pytest

from repro.core.coordination import IngestCoordinator
from repro.core.processor import ApopheniaConfig
from repro.runtime.privilege import Privilege
from repro.runtime.replication import ReplicatedRun
from repro.runtime.task import task

pytestmark = pytest.mark.replication

RO = Privilege.READ_ONLY
WD = Privilege.WRITE_DISCARD

CONFIG = ApopheniaConfig(
    min_trace_length=3,
    batchsize=200,
    multi_scale_factor=25,
    job_base_latency_ops=40,
    initial_ingest_margin_ops=10,  # deliberately tight: forces waits
)


def run_replicated(num_nodes, iterations, config=CONFIG):
    run = ReplicatedRun(num_nodes, config=config)
    region_sets = []
    for runtime in run.runtimes:
        f = runtime.forest
        region_sets.append(
            {n: f.create_region((32,), name=n) for n in ("a", "b", "c", "d")}
        )

    def make(kind):
        def build(node):
            r = region_sets[node]
            if kind == 0:
                return task("STEP0", (r["a"], RO), (r["b"], WD))
            if kind == 1:
                return task("STEP1", (r["b"], RO), (r["c"], WD))
            return task("STEP2", (r["c"], RO), (r["d"], WD))

        return build

    for i in range(iterations):
        run.set_iteration(i)
        for kind in range(3):
            run.execute_task_factory(make(kind))
    run.flush()
    return run


class TestAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_all_nodes_issue_identical_traces(self, nodes):
        run = run_replicated(nodes, 150)
        assert run.decisions_agree(), run.decision_traces()

    def test_traces_actually_fired(self):
        run = run_replicated(2, 150)
        assert run.processors[0].trace_log  # not vacuous

    def test_jitter_differs_but_results_agree(self):
        run = run_replicated(4, 150)
        # Per-node async jobs completed at different op counts...
        completions = set()
        for proc in run.processors:
            completions.add(proc.executor.jobs_submitted)
        # ...but submissions are deterministic and equal.
        assert len(completions) == 1

    def test_margin_growth_recorded_on_tight_margin(self):
        run = run_replicated(2, 150)
        # Initial margin of 10 ops is far below job latency: the protocol
        # must have grown it.
        assert run.coordinator.margin_ops > 10

    def test_divergence_without_coordination(self):
        """Sanity for the test itself: per-node completion times really do
        differ (so agreement is doing actual work). We check that at
        least one job's completion op differs across nodes."""
        run = ReplicatedRun(2, config=CONFIG)
        ops = []
        for proc in run.processors:
            job = proc.executor.submit(list("abcabc") * 10, 3, now_op=0)
            ops.append(job.completes_at_op)
        assert ops[0] != ops[1]

    def test_single_node_trivially_agrees(self):
        run = run_replicated(1, 60)
        assert run.decisions_agree()

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ReplicatedRun(0)

    def test_shared_coordinator_instance(self):
        coordinator = IngestCoordinator()
        run = ReplicatedRun(2, config=CONFIG, coordinator=coordinator)
        assert run.coordinator is coordinator
