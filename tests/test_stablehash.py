"""repro.stablehash: the sanctioned cross-process hash (lint rule RPL003).

The output of these functions is load-bearing bit for bit: the fault
harness keys injected faults on ``mix64(seed, stable_hash(stream),
job_seq)``, so recorded chaos runs reproduce only if the constants never
change, and ``SessionSnapshot.stable_digest`` is only useful if two
processes (with different ``PYTHONHASHSEED``) compute the same digest.
The pinned values below freeze the contract.
"""

import os
import subprocess
import sys

import pytest

from repro.stablehash import mix64, stable_digest, stable_hash


class TestFrozenOutputs:
    """Golden values: a change here breaks recorded chaos runs."""

    def test_stable_hash_pinned(self):
        assert stable_hash(("a", "b", 1)) == 1095318834
        assert stable_hash(None) == 3751981041
        assert stable_hash(0) == 4108050209

    def test_stable_digest_pinned(self):
        assert stable_digest(("a", "b", 1)) == "2b058dd3cb5334bc"

    def test_mix64_pinned(self):
        assert mix64(1234, 5678, 9) == 6495662942632087376

    def test_digest_shape(self):
        digest = stable_digest(("x",) * 100)
        assert len(digest) == 16
        int(digest, 16)  # valid hex


class TestProperties:
    def test_distinguishes_values(self):
        objs = [(), ("a",), ("b",), ("a", "b"), (1,), ("1",), None, 0]
        digests = [stable_digest(o) for o in objs]
        assert len(set(digests)) == len(objs)

    def test_mix64_stays_in_u64(self):
        for args in [(0, 0, 0), (2**64 - 1,) * 3, (1, 2, 3)]:
            assert 0 <= mix64(*args) < 2**64

    def test_faults_module_uses_this_implementation(self):
        # The hoist from repro.faults must not have forked the function.
        from repro import faults

        assert faults.mix64 is mix64
        assert faults._stream_hash(("s", 1)) == stable_hash(("s", 1))
        assert faults._stream_hash(None) == 0  # the documented special case


@pytest.mark.parametrize("seed", ["0", "1", "12345"])
def test_stable_across_hash_randomization(seed):
    """The whole point: identical output under any PYTHONHASHSEED."""
    code = (
        "from repro.stablehash import stable_digest;"
        "print(stable_digest(('stream', 'alpha', ('t1', 't2'), 42)))"
    )
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    ).stdout.strip()
    assert out == stable_digest(("stream", "alpha", ("t1", "t2"), 42))


def test_session_snapshot_digest():
    """SessionSnapshot.stable_digest: equal decisions, equal digest."""
    from repro.api import SessionSnapshot

    def snap(trace):
        return SessionSnapshot("s", "standalone", tuple(trace), (1, 2, 3))

    a = snap([("trace", "t1"), ("commit", "t2")])
    b = snap([("trace", "t1"), ("commit", "t2")])
    c = snap([("trace", "t1")])
    assert a.stable_digest() == b.stable_digest()
    assert a.stable_digest() != c.stable_digest()
    assert len(a.stable_digest()) == 16
    # Unlike __hash__/__eq__ (intra-process, PYTHONHASHSEED-dependent),
    # the digest is a pure function of the decision tuple.
    assert a.stable_digest() == stable_digest(a.decisions)
