"""The deployment-agnostic client API (`repro.api`).

The load-bearing property is decision-stream parity: for every
application, the tbegin/tend stream produced via
``repro.api.open_session()`` must be byte-identical to driving an
``ApopheniaProcessor`` directly -- for both the standalone and the
service backend. On top of that: the validating config builder with
profiles and ``REPRO_*`` environment layering, the unified plugin
registries, the uniform ``SessionStats`` surface, size-aware shared-memo
admission, per-lane outstanding quotas, and the deprecation gate on
shimmed constructors.
"""

import pytest

import repro
import repro.api as api
from repro.api import (
    PROFILES,
    SessionSnapshot,
    StandaloneBackend,
    TRACING_BACKENDS,
    build_config,
    collect_session_stats,
    open_session,
)
from repro.core.jobs import MiningMemo
from repro.core.processor import ApopheniaConfig, ApopheniaProcessor
from repro.experiments.multi_tenant import capture_stream
from repro.registry import Registry, RegistryError
from repro.runtime.runtime import Runtime
from repro.runtime.session import RuntimeSessionFactory
from repro.runtime.task import Task
from repro.service import ApopheniaService, SharedJobExecutor

pytestmark = pytest.mark.api

#: Same sizing as the service suite: small enough for tier-1, large
#: enough to fire traces and reach full-buffer slices of the schedule.
FAST_CONFIG = ApopheniaConfig(
    min_trace_length=3,
    batchsize=200,
    multi_scale_factor=25,
    job_base_latency_ops=10,
    initial_ingest_margin_ops=20,
)

PARITY_APPS = ("s3d", "stencil", "jacobi", "cfd")


@pytest.fixture(autouse=True)
def _no_ambient_repro_env(monkeypatch):
    """Strip REPRO_* from the environment: these suites assert exact
    configuration layering, which ambient deployment knobs would skew."""
    import os

    for var in [v for v in os.environ if v.startswith("REPRO_")]:
        monkeypatch.delenv(var)


@pytest.fixture(scope="module")
def app_streams():
    """One small captured stream per application type."""
    return {
        name: capture_stream(name, 700, task_scale=0.05)
        for name in PARITY_APPS
    }


def _fast_runtime():
    return Runtime(
        analysis_mode="fast", mismatch_policy="fallback", keep_task_log=False
    )


def _drive_direct(stream, config=FAST_CONFIG):
    """The pre-facade idiom: construct and drive a processor by hand."""
    processor = ApopheniaProcessor(_fast_runtime(), config)
    for iteration, task in stream:
        processor.set_iteration(iteration)
        processor.execute_task(task)
    processor.flush()
    return SessionSnapshot.of(processor)


def _drive_session(session, stream):
    for iteration, task in stream:
        session.set_iteration(iteration)
        session.submit(task)
    session.flush()
    return session.snapshot()


class TestDecisionStreamParity:
    """The acceptance property: the facade never changes decisions."""

    @pytest.mark.parametrize("app_name", PARITY_APPS)
    def test_standalone_backend_matches_direct_processor(
        self, app_streams, app_name
    ):
        stream = app_streams[app_name]
        direct = _drive_direct(stream)
        with open_session(
            app_name, config=FAST_CONFIG, runtime=_fast_runtime()
        ) as session:
            facade = _drive_session(session, stream)
        assert facade.decisions == direct.decisions
        assert facade.decision_trace, app_name  # traces actually fired

    @pytest.mark.parametrize("app_name", PARITY_APPS)
    def test_service_backend_matches_direct_processor(
        self, app_streams, app_name
    ):
        stream = app_streams[app_name]
        direct = _drive_direct(stream)
        service = ApopheniaService(FAST_CONFIG)
        with open_session(app_name, backend=service) as session:
            facade = _drive_session(session, stream)
        assert facade.decisions == direct.decisions

    def test_interleaved_service_sessions_match_direct(self, app_streams):
        """All four apps through one service, task-by-task round-robin,
        each still byte-identical to its direct standalone run."""
        service = ApopheniaService(FAST_CONFIG)
        sessions = {
            name: open_session(name, backend=service)
            for name in PARITY_APPS
        }
        cursors = {name: 0 for name in PARITY_APPS}
        remaining = True
        while remaining:
            remaining = False
            for name in PARITY_APPS:
                i = cursors[name]
                if i >= len(app_streams[name]):
                    continue
                iteration, task = app_streams[name][i]
                session = sessions[name]
                session.set_iteration(iteration)
                session.submit(task)
                cursors[name] += 1
                remaining = True
        for name, session in sessions.items():
            session.flush()
            assert session.snapshot().decisions == _drive_direct(
                app_streams[name]
            ).decisions, name


class TestSessionLifecycle:
    def test_context_manager_closes(self):
        with open_session("cm", profile="reduced-scale") as session:
            session.submit(Task("T"))
        assert session.closed
        session.close()  # idempotent

    def test_auto_session_ids_are_unique(self):
        a = open_session(profile="reduced-scale")
        b = open_session(profile="reduced-scale")
        assert a.session_id != b.session_id
        a.close()
        b.close()

    def test_unknown_backend_name(self):
        with pytest.raises(RegistryError, match="service"):
            open_session("x", backend="replicated-someday")

    def test_service_attach_uses_service_config(self):
        service = ApopheniaService(FAST_CONFIG)
        with open_session("t", backend=service) as session:
            assert session.processor.config is service.config
        assert "t" not in service.sessions

    def test_service_attach_with_explicit_override(self):
        service = ApopheniaService(FAST_CONFIG)
        with open_session(
            "t", backend=service, config=FAST_CONFIG, max_trace_length=7
        ) as session:
            assert session.processor.config.max_trace_length == 7

    def test_bare_overrides_layer_on_the_backends_config(self):
        """A tenant tweaking one knob on a tuned service must get the
        service's config plus that knob -- not the default profile."""
        service = ApopheniaService(FAST_CONFIG)
        with open_session(
            "t", backend=service, max_trace_length=7
        ) as session:
            cfg = session.processor.config
            assert cfg.max_trace_length == 7
            assert cfg.batchsize == FAST_CONFIG.batchsize  # not 5000

    def test_close_tolerates_backend_side_eviction(self):
        service = ApopheniaService(FAST_CONFIG.with_overrides(max_sessions=1))
        first = open_session("first", backend=service)
        second = open_session("second", backend=service)  # evicts "first"
        assert first.handle.closed
        first.close()  # must not raise
        second.close()

    def test_submit_after_service_close_rejected(self):
        service = ApopheniaService(FAST_CONFIG)
        session = open_session("t", backend=service)
        session.close()
        with pytest.raises(RuntimeError):
            session.submit(Task("T"))

    def test_standalone_pool_isolates_sessions(self):
        backend = StandaloneBackend(FAST_CONFIG)
        a = open_session("a", backend=backend)
        b = open_session("b", backend=backend)
        assert a.runtime is not b.runtime
        assert a.processor is not b.processor
        with pytest.raises(ValueError):
            backend.open_session("a")
        a.close()
        b.close()
        assert len(backend) == 0

    def test_standalone_close_session_exception_safe(self, monkeypatch):
        """Pool teardown must release the entry and factory runtime even
        when the closing flush raises (mirrors the service fix)."""
        backend = StandaloneBackend(FAST_CONFIG)
        session = open_session("crashy", backend=backend)

        def boom(session_id=None):
            raise RuntimeError("flush failed")

        monkeypatch.setattr(session.processor, "close_session", boom)
        with pytest.raises(RuntimeError, match="flush failed"):
            backend.close_session("crashy")
        assert len(backend) == 0
        assert len(backend.runtime_factory) == 0
        backend.open_session("crashy")  # the id is immediately reusable
        with pytest.raises(KeyError, match="unknown or already-closed"):
            backend.close_session("never-opened")

    def test_standalone_backend_stats_survive_session_close(self):
        """Lifetime counters must not vanish with the session, matching
        the service backend whose shared-executor aggregates persist."""
        backend = StandaloneBackend(FAST_CONFIG)
        with open_session("a", backend=backend) as session:
            for i in range(60):
                session.submit(Task(f"T{i % 2}"))
            session.flush()
            live = backend.backend_stats
        closed = backend.backend_stats
        assert live["jobs_materialized"] > 0
        assert closed["jobs_materialized"] == live["jobs_materialized"]
        assert closed["memo_hits"] == live["memo_hits"]
        assert closed["sessions_open"] == 0
        assert closed["sessions_opened"] == 1

    def test_processor_is_single_session_backend(self):
        processor = ApopheniaProcessor(_fast_runtime(), FAST_CONFIG)
        with open_session("only", backend=processor) as session:
            session.submit(Task("T"))
            assert session.processor is processor
            with pytest.raises(ValueError):
                processor.open_session("another")
        assert processor.session_id is None  # close unbinds

    def test_processor_backend_rejects_foreign_node_id(self):
        """node_id feeds decision-affecting completion jitter; asking a
        node-0 processor to serve as another node must fail loudly."""
        processor = ApopheniaProcessor(_fast_runtime(), FAST_CONFIG)
        with pytest.raises(ValueError, match="node"):
            open_session("s", backend=processor, node_id=3)
        replicated = ApopheniaProcessor(
            _fast_runtime(), FAST_CONFIG, node_id=3
        )
        # Matching id and the unspecified default both attach fine.
        replicated.open_session("s", node_id=3)
        replicated.close_session()
        with open_session("s", backend=replicated):
            pass

    def test_tracing_backend_protocol_conformance(self):
        from repro.api import ReplicatedBackend

        for cls in (ApopheniaProcessor, ApopheniaService, StandaloneBackend,
                    ReplicatedBackend):
            for member in ("backend_kind", "open_session", "close_session",
                           "backend_stats"):
                assert hasattr(cls, member), (cls, member)
        assert set(TRACING_BACKENDS) == {"standalone", "service",
                                         "replicated"}


class TestConfigBuilder:
    def test_default_profile_is_paper_default(self):
        assert build_config(env={}) == ApopheniaConfig()

    def test_named_profiles_exist(self):
        assert {"paper-default", "reduced-scale", "service"} <= set(PROFILES)
        assert build_config(profile="service", env={}).shared_memo_capacity \
            == 1024

    def test_unknown_profile(self):
        with pytest.raises(RegistryError, match="paper-default"):
            build_config(profile="huge", env={})

    def test_override_beats_profile(self):
        cfg = build_config(profile="reduced-scale", env={}, batchsize=256)
        assert cfg.batchsize == 256
        assert cfg.multi_scale_factor == 25  # rest of profile intact

    def test_env_beats_override(self):
        cfg = build_config(
            profile="reduced-scale",
            env={"REPRO_BATCHSIZE": "512"},
            batchsize=256,
        )
        assert cfg.batchsize == 512

    def test_explicit_config_is_authoritative(self):
        """An explicitly passed config must come back knob-for-knob --
        no silent environment layering on top (the escape hatch parity
        tests and benchmarks rely on)."""
        cfg = build_config(
            config=FAST_CONFIG, env={"REPRO_BATCHSIZE": "512"}
        )
        assert cfg == FAST_CONFIG
        assert build_config(
            config=FAST_CONFIG, env={}, batchsize=512
        ).batchsize == 512  # keyword overrides still apply

    def test_facade_with_explicit_config_ignores_ambient_env(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BATCHSIZE", "64")
        with open_session(
            "pinned", config=FAST_CONFIG, runtime=_fast_runtime()
        ) as session:
            assert session.processor.config.batchsize == FAST_CONFIG.batchsize

    def test_service_attach_with_env_mapping_applies(self):
        """Passing env= when attaching to a backend is explicit
        configuration layered on the backend's config, not a no-op."""
        service = ApopheniaService(FAST_CONFIG)
        with open_session(
            "t", backend=service, env={"REPRO_BATCHSIZE": "512"}
        ) as session:
            cfg = session.processor.config
            assert cfg.batchsize == 512
            # Untouched knobs come from the service, not a profile.
            assert cfg.multi_scale_factor == FAST_CONFIG.multi_scale_factor

    def test_env_profile_selection(self):
        cfg = build_config(env={"REPRO_PROFILE": "service"})
        assert cfg.shared_memo_token_budget == 1_000_000
        # An explicit profile argument beats the environment's choice.
        cfg = build_config(
            profile="paper-default", env={"REPRO_PROFILE": "service"}
        )
        assert cfg.shared_memo_token_budget is None

    def test_env_optional_fields(self):
        assert build_config(
            env={"REPRO_MAX_TRACE_LENGTH": "200"}
        ).max_trace_length == 200
        assert build_config(
            env={"REPRO_MAX_TRACE_LENGTH": "none"}
        ).max_trace_length is None

    def test_env_sa_backend_layering(self):
        cfg = build_config(env={"REPRO_SA_BACKEND": "doubling"})
        assert cfg.sa_backend == "doubling"

    def test_bad_env_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_BATCHSIZE"):
            build_config(env={"REPRO_BATCHSIZE": "many"})

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(min_trace_length=1),
            dict(batchsize=6, min_trace_length=5),
            dict(multi_scale_factor=0),
            dict(max_trace_length=3, min_trace_length=5),
            dict(identifier_algorithm="psychic"),
            dict(sa_backend="btree"),
            dict(repeats_algorithm="grep"),
            dict(max_sessions=0),
            dict(shared_memo_token_budget=0),
            dict(lane_outstanding_quota=0),
        ],
    )
    def test_validation_rejects(self, overrides):
        with pytest.raises(ValueError):
            build_config(env={}, **overrides)

    def test_validation_at_open_session(self):
        with pytest.raises(ValueError, match="min_trace_length"):
            open_session("bad", min_trace_length=1)


class TestRegistries:
    def test_uniform_pattern_across_plugin_points(self):
        registries = api.registries()
        assert set(registries) == {
            "tracing_backends", "config_profiles", "sa_backends", "apps",
            "fault_plans", "trace_formats", "persist_formats",
            "phase_graphs",
        }
        for registry in registries.values():
            assert isinstance(registry, Registry)

    def test_get_app(self):
        from repro.apps import APP_REGISTRY, get_app

        assert get_app("s3d") is APP_REGISTRY["s3d"]
        with pytest.raises(RegistryError, match="s3d"):
            get_app("does-not-exist")

    def test_sa_backend_registry_error_names_backends(self):
        from repro.core.sa_backends import BACKENDS

        with pytest.raises(RegistryError, match="sais"):
            BACKENDS["btree"]

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("x", 1)
        with pytest.raises(ValueError):
            registry.register("x", 2)
        registry["x"] = 2  # deliberate overwrite stays possible
        assert registry["x"] == 2

    def test_registry_decorator_form(self):
        registry = Registry("thing")

        @registry.register("fn")
        def fn():
            return 7

        assert registry["fn"] is fn

    def test_registry_error_message_is_not_repr_quoted(self):
        """RegistryError inherits KeyError; it must not inherit
        KeyError's repr-the-argument __str__."""
        registry = Registry("widget", {"a": 1})
        with pytest.raises(RegistryError) as excinfo:
            registry["zzz"]
        assert str(excinfo.value) == "unknown widget 'zzz'; known: ['a']"


class TestSessionStatsSurface:
    def test_matches_hand_computed_values(self, app_streams):
        """The structured surface reports exactly what
        experiments/multi_tenant.py used to dig out of internals."""
        stream = app_streams["jacobi"]
        service = ApopheniaService(FAST_CONFIG)
        with open_session("jacobi", backend=service) as session:
            _drive_session(session, stream)
            stats = session.stats()
            handle = session.handle
            # Replayer counters == the internals-poking tuple.
            assert stats.replayer_counters() == \
                handle.processor.stats.decision_tuple()
            assert stats.serving_counters() == \
                handle.processor.stats.as_tuple()[6:9]
            # Executor-side counters == the per-lane internals.
            assert stats.memo_hits == handle.lane.memo_hits
            assert stats.jobs_submitted == handle.lane.jobs_submitted
            assert stats.tokens_analyzed == handle.lane.tokens_analyzed
            assert stats.outstanding_jobs == handle.lane.outstanding
            assert stats.evictions == service.sessions_evicted == 0
            assert stats.backend == "service"
            assert stats.session_id == "jacobi"
            assert stats.quota_limit is None  # FAST_CONFIG sets no quota
            assert 0.0 <= stats.memo_hit_rate <= 1.0
            assert stats.replay_fraction == pytest.approx(
                stats.tasks_traced / stats.tasks_seen
            )

    def test_standalone_and_service_replayer_counters_agree(self, app_streams):
        stream = app_streams["stencil"]
        with open_session(
            "a", config=FAST_CONFIG, runtime=_fast_runtime()
        ) as solo:
            _drive_session(solo, stream)
            solo_stats = solo.stats()
        service = ApopheniaService(FAST_CONFIG)
        with open_session("a", backend=service) as served:
            _drive_session(served, stream)
            served_stats = served.stats()
        assert solo_stats.replayer_counters() == \
            served_stats.replayer_counters()
        assert solo_stats.backend == "standalone"

    def test_collect_from_bare_processor(self):
        processor = ApopheniaProcessor(_fast_runtime(), FAST_CONFIG)
        for i in range(20):
            processor.execute_task(Task(f"T{i % 2}"))
        stats = collect_session_stats(processor)
        assert stats.backend == "standalone"
        assert stats.tasks_seen == 20
        assert stats.jobs_submitted == processor.executor.jobs_submitted


class TestEvictionFlushOrdering:
    def test_evicted_sessions_buffered_tasks_flush_in_stream_order(self):
        """Eviction must drain the victim's replayer buffer to its own
        runtime, in submission order, before the handle closes."""
        factory = RuntimeSessionFactory(keep_task_log=True)
        service = ApopheniaService(
            FAST_CONFIG.with_overrides(max_sessions=1),
            runtime_factory=factory,
        )
        victim = open_session("victim", backend=service)
        tasks = [Task(f"T{i % 3}") for i in range(100)]
        for task in tasks:
            victim.submit(task)
        runtime = victim.runtime
        # The periodic stream keeps potential matches alive, so some
        # tasks must still be buffered (otherwise the test is vacuous);
        # the task log records only tasks actually forwarded.
        assert len(runtime.task_log) < len(tasks)

        usurper = open_session("usurper", backend=service)  # evicts victim
        assert victim.handle.closed
        assert service.sessions_evicted == 1
        # Every buffered task reached the victim's runtime...
        assert len(runtime.task_log) == len(tasks)
        # ...in exactly the order the tenant submitted them.
        assert [r.uid for r in runtime.task_log] == [t.uid for t in tasks]
        victim.close()
        usurper.close()


class TestSizeAwareMemoAdmission:
    def _window(self, tag, n):
        return [(tag, i % 4) for i in range(n)]

    def test_oversized_window_not_admitted(self):
        memo = MiningMemo(capacity=8, token_budget=10)
        big = self._window("big", 12)
        memo.insert(MiningMemo.key(big, 2), [])
        assert len(memo) == 0
        assert memo.oversize_rejections == 1
        assert memo.tokens_held == 0

    def test_big_window_cannot_displace_many_small_entries(self):
        memo = MiningMemo(capacity=8, token_budget=12)
        smalls = [self._window(f"s{i}", 3) for i in range(4)]
        for window in smalls:
            memo.insert(MiningMemo.key(window, 2), [])
        assert memo.tokens_held == 12 and len(memo) == 4
        # The regression this knob exists for: pre-budget, one giant
        # window would displace the whole working set.
        memo.insert(MiningMemo.key(self._window("big", 5000), 2), [])
        assert len(memo) == 4
        for window in smalls:
            assert memo.lookup(MiningMemo.key(window, 2)) is not None

    def test_token_weighted_lru_evicts_until_budget_fits(self):
        memo = MiningMemo(capacity=8, token_budget=10)
        a, b, c = (self._window(t, 4) for t in "abc")
        memo.insert(MiningMemo.key(a, 2), [])
        memo.insert(MiningMemo.key(b, 2), [])
        memo.lookup(MiningMemo.key(a, 2))  # a is now most recently used
        memo.insert(MiningMemo.key(c, 2), [])  # 12 > 10: evict LRU (b)
        assert memo.tokens_held == 8
        assert memo.lookup(MiningMemo.key(b, 2)) is None
        assert memo.lookup(MiningMemo.key(a, 2)) is not None
        assert memo.evictions == 1

    def test_reinsert_same_key_does_not_leak_held_tokens(self):
        memo = MiningMemo(capacity=8, token_budget=10)
        key = MiningMemo.key(self._window("a", 4), 2)
        memo.insert(key, [])
        memo.insert(key, [])  # replace, not accumulate
        assert memo.tokens_held == 4
        # The accounting stays exact, so budget eviction cannot underflow.
        memo.insert(MiningMemo.key(self._window("b", 6), 2), [])
        assert memo.tokens_held == 10 and len(memo) == 2

    def test_reinsert_refreshes_lru_position(self):
        memo = MiningMemo(capacity=8, token_budget=8)
        a = MiningMemo.key(self._window("a", 3), 2)
        b = MiningMemo.key(self._window("b", 3), 2)
        memo.insert(a, [])
        memo.insert(b, [])
        memo.insert(a, [])  # refresh: a is now the hottest entry
        memo.insert(MiningMemo.key(self._window("c", 3), 2), [])  # over budget
        assert memo.lookup(b) is None  # the genuinely cold entry went
        assert memo.lookup(a) is not None

    def test_entry_count_lru_unchanged_without_budget(self):
        memo = MiningMemo(capacity=2)
        for tag in "abc":
            memo.insert(MiningMemo.key(self._window(tag, 4), 2), [])
        assert len(memo) == 2 and memo.evictions == 1
        assert memo.token_budget is None

    def test_budget_plumbs_from_config_to_shared_memo(self):
        config = FAST_CONFIG.with_overrides(shared_memo_token_budget=4096)
        service = ApopheniaService(config)
        assert service.executor.memo.token_budget == 4096
        assert "memo_tokens_held" in service.executor.stats


class TestLaneOutstandingQuota:
    def _counting(self, log):
        def algorithm(tokens, min_length):
            log.append(tuple(tokens))
            return []

        return algorithm

    def test_runaway_lane_drains_its_own_work(self):
        log = []
        shared = SharedJobExecutor(
            self._counting(log), memo_capacity=0,
            max_outstanding_jobs=1000, lane_outstanding_quota=2,
        )
        runaway = shared.lane("runaway")
        victim = shared.lane("victim")
        victim.submit([("v", 0)] * 4, 1, now_op=0)
        for i in range(8):
            runaway.submit([("r", i)] * 4, 1, now_op=i)
            assert runaway.outstanding <= 2
        # The quota drains charged the burst to the runaway lane only:
        # the victim's queued job was never touched.
        assert victim.outstanding == 1
        assert all(window[0][0] == "r" for window in log)
        assert runaway.quota_stalls == 6
        assert shared.lane_quota_drains == 6
        # Runaway drains run oldest-first (submission order).
        assert [w[0][1] for w in log] == list(range(6))

    def test_quota_is_decision_neutral(self, app_streams):
        stream = app_streams["s3d"]
        baseline = _drive_direct(stream)
        config = FAST_CONFIG.with_overrides(lane_outstanding_quota=1)
        service = ApopheniaService(config)
        with open_session("s3d", backend=service) as session:
            throttled = _drive_session(session, stream)
            stats = session.stats()
        assert throttled.decisions == baseline.decisions
        assert stats.quota_limit == 1  # surfaced in SessionStats

    def test_quota_and_token_budget_together_decision_neutral(
        self, app_streams
    ):
        """The 'service' profile ships both satellite knobs on; a session
        served under aggressive settings of both must still decide
        byte-identically to a direct standalone run."""
        stream = app_streams["cfd"]
        baseline = _drive_direct(stream)
        config = FAST_CONFIG.with_overrides(
            lane_outstanding_quota=2, shared_memo_token_budget=64
        )
        service = ApopheniaService(config)
        with open_session("cfd", backend=service) as session:
            throttled = _drive_session(session, stream)
        assert throttled.decisions == baseline.decisions
        memo = service.executor.memo
        assert memo.token_budget == 64
        # The tight budget actually engaged (evicted or refused windows),
        # so the parity above exercised the size-aware admission path.
        assert memo.evictions + memo.oversize_rejections > 0
        assert memo.tokens_held <= 64

    def test_quota_surfaces_in_session_stats(self):
        config = FAST_CONFIG.with_overrides(lane_outstanding_quota=3)
        service = ApopheniaService(config)
        with open_session("t", backend=service) as session:
            stats = session.stats()
            assert stats.quota_limit == 3
            assert stats.quota_stalls == 0


class TestDeprecationShims:
    def test_auto_config_warns_and_keeps_exact_old_semantics(self):
        """The shim must not silently change out-of-repo callers: plain
        construction, no env/profile layering, no validation."""
        from repro.experiments.harness import auto_config

        with pytest.deprecated_call(match="repro.api.build_config"):
            cfg = auto_config(batchsize=512)
        assert cfg.batchsize == 512

    def test_auto_config_ignores_environment_and_skips_validation(
        self, monkeypatch
    ):
        from repro.experiments.harness import auto_config

        monkeypatch.setenv("REPRO_BATCHSIZE", "4096")
        monkeypatch.setenv("REPRO_PROFILE", "service")
        with pytest.deprecated_call():
            pinned = auto_config(batchsize=256)
            degenerate = auto_config(min_trace_length=1)
        assert pinned.batchsize == 256
        assert pinned.shared_memo_capacity == ApopheniaConfig().shared_memo_capacity
        assert degenerate.min_trace_length == 1  # historical: unvalidated

    def test_repro_deprecations_escalate_to_errors(self):
        """The gate itself: a repro-prefixed DeprecationWarning raised
        outside a catching context must fail the suite."""
        import warnings

        from repro.experiments.harness import auto_config

        with pytest.raises(DeprecationWarning):
            with warnings.catch_warnings():
                warnings.filterwarnings(
                    "error", message=r"^repro\b", category=DeprecationWarning
                )
                auto_config()
