"""Dynamic dependence analysis."""

import pytest

from repro.runtime.deps import DependenceAnalyzer
from repro.runtime.privilege import DependenceType, Privilege
from repro.runtime.region import RegionForest
from repro.runtime.task import task

RO = Privilege.READ_ONLY
RW = Privilege.READ_WRITE
WD = Privilege.WRITE_DISCARD
RD = Privilege.REDUCE


@pytest.fixture
def forest():
    return RegionForest()


@pytest.fixture
def analyzer():
    return DependenceAnalyzer()


class TestBasicChains:
    def test_raw_chain(self, forest, analyzer):
        r = forest.create_region((10,))
        writer = task("W", (r, WD))
        reader = task("R", (r, RO))
        d1 = analyzer.analyze(writer)
        d2 = analyzer.analyze(reader)
        assert d1.depends_on == frozenset()
        assert d2.depends_on == {writer.uid}
        assert d2.dependence_types[writer.uid] is DependenceType.TRUE

    def test_parallel_readers(self, forest, analyzer):
        r = forest.create_region((10,))
        analyzer.analyze(task("W", (r, WD)))
        r1 = analyzer.analyze(task("R1", (r, RO)))
        r2 = analyzer.analyze(task("R2", (r, RO)))
        assert r1.depends_on == r2.depends_on  # both on the writer only

    def test_war(self, forest, analyzer):
        r = forest.create_region((10,))
        reader = task("R", (r, RO))
        writer = task("W", (r, WD))
        analyzer.analyze(reader)
        deps = analyzer.analyze(writer)
        assert reader.uid in deps.depends_on
        assert deps.dependence_types[reader.uid] is DependenceType.ANTI

    def test_waw(self, forest, analyzer):
        r = forest.create_region((10,))
        w1 = task("W1", (r, WD))
        w2 = task("W2", (r, WD))
        analyzer.analyze(w1)
        deps = analyzer.analyze(w2)
        assert deps.dependence_types[w1.uid] is DependenceType.OUTPUT

    def test_dominating_write_prunes_state(self, forest, analyzer):
        r = forest.create_region((10,))
        w1 = task("W1", (r, WD))
        w2 = task("W2", (r, WD))
        r3 = task("R", (r, RO))
        analyzer.analyze(w1)
        analyzer.analyze(w2)
        deps = analyzer.analyze(r3)
        # The reader depends only on the most recent dominating writer.
        assert deps.depends_on == {w2.uid}


class TestRegions:
    def test_disjoint_subregions_parallel(self, forest, analyzer):
        r = forest.create_region((100,))
        p = forest.create_partition(r, 2)
        t0 = task("A", (p.subregion(0), WD))
        t1 = task("B", (p.subregion(1), WD))
        analyzer.analyze(t0)
        deps = analyzer.analyze(t1)
        assert deps.depends_on == frozenset()

    def test_parent_write_orders_after_children(self, forest, analyzer):
        r = forest.create_region((100,))
        p = forest.create_partition(r, 2)
        t0 = task("A", (p.subregion(0), WD))
        t1 = task("B", (p.subregion(1), WD))
        whole = task("C", (r, RW))
        analyzer.analyze(t0)
        analyzer.analyze(t1)
        deps = analyzer.analyze(whole)
        assert deps.depends_on == {t0.uid, t1.uid}

    def test_fields_independent(self, forest, analyzer):
        r = forest.create_region((100,), fields=("u", "v"))
        tu = task("U", (r, WD, ("u",)))
        tv = task("V", (r, WD, ("v",)))
        analyzer.analyze(tu)
        deps = analyzer.analyze(tv)
        assert deps.depends_on == frozenset()

    def test_field_overlap_conflicts(self, forest, analyzer):
        r = forest.create_region((100,), fields=("u", "v"))
        tu = task("U", (r, WD, ("u", "v")))
        tv = task("V", (r, RO, ("v",)))
        analyzer.analyze(tu)
        deps = analyzer.analyze(tv)
        assert deps.depends_on == {tu.uid}


class TestReductions:
    def test_same_redop_parallel(self, forest, analyzer):
        from repro.runtime.task import RegionRequirement, Task

        r = forest.create_region((10,))
        t1 = Task("R1", [RegionRequirement(r, RD, redop="sum")])
        t2 = Task("R2", [RegionRequirement(r, RD, redop="sum")])
        analyzer.analyze(t1)
        deps = analyzer.analyze(t2)
        assert deps.depends_on == frozenset()

    def test_different_redop_serializes(self, forest, analyzer):
        from repro.runtime.task import RegionRequirement, Task

        r = forest.create_region((10,))
        t1 = Task("R1", [RegionRequirement(r, RD, redop="sum")])
        t2 = Task("R2", [RegionRequirement(r, RD, redop="max")])
        analyzer.analyze(t1)
        deps = analyzer.analyze(t2)
        assert deps.depends_on == {t1.uid}

    def test_read_after_reduction(self, forest, analyzer):
        from repro.runtime.task import RegionRequirement, Task

        r = forest.create_region((10,))
        t1 = Task("R1", [RegionRequirement(r, RD, redop="sum")])
        reader = task("R", (r, RO))
        analyzer.analyze(t1)
        deps = analyzer.analyze(reader)
        assert deps.depends_on == {t1.uid}


class TestJacobiPattern:
    def test_figure1_stream_dependencies(self, forest, analyzer):
        """The DOT->SUB->DIV chain of Figure 1b forms serial iterations."""
        R = forest.create_region((64, 64), name="R")
        b = forest.create_region((64,), name="b")
        d = forest.create_region((64,), name="d")
        x1 = forest.create_region((64,), name="x1")
        x2 = forest.create_region((64,), name="x2")
        t1 = forest.create_region((64,), name="t1")
        t2 = forest.create_region((64,), name="t2")

        def iteration(xin, xout):
            dot = task("DOT", (R, RO), (xin, RO), (t1, WD))
            sub = task("SUB", (b, RO), (t1, RO), (t2, WD))
            div = task("DIV", (t2, RO), (d, RO), (xout, WD))
            return [analyzer.analyze(t) for t in (dot, sub, div)], (dot, sub, div)

        (d1, d2, d3), (dot, sub, div) = iteration(x1, x2)
        assert sub.uid in [u for u in d3.depends_on] or t2  # chain exists
        assert dot.uid in d2.depends_on
        assert sub.uid in d3.depends_on
        # Next iteration's DOT reads x2 and overwrites t1 (WAR with SUB).
        (e1, _, _), (dot2, _, _) = iteration(x2, x1)
        assert div.uid in e1.depends_on  # RAW on x2
        assert sub.uid in e1.depends_on  # WAR on t1

    def test_comparison_counter_grows(self, forest, analyzer):
        r = forest.create_region((10,))
        before = analyzer.comparisons
        analyzer.analyze(task("A", (r, WD)))
        analyzer.analyze(task("B", (r, RO)))
        assert analyzer.comparisons > before
        assert analyzer.tasks_analyzed == 2
