# Convenience targets; see ROADMAP.md for the canonical commands.

.PHONY: verify verify-full verify-chaos test bench service-bench replayer-bench api-check lint lint-baseline corpus trace-check persist-check

## Tier-1 tests plus the perf_smoke guards (the pre-commit check).
verify:
	bash scripts/verify.sh

## Everything, benchmarks included.
verify-full:
	VERIFY_FULL=1 bash scripts/verify.sh

## The fault-injection / graceful-degradation suites on their own.
verify-chaos:
	PYTHONPATH=src python -m pytest -x -q -m faults tests

test:
	PYTHONPATH=src python -m pytest -x -q tests

bench:
	PYTHONPATH=src python -m pytest -q benchmarks

## The multi-tenant service benchmark on its own.
service-bench:
	PYTHONPATH=src python -m pytest -q benchmarks/test_perf_service.py -m service

## The replayer-layer (match engine + hysteresis) benchmarks on their own.
replayer-bench:
	PYTHONPATH=src python -m pytest -q benchmarks/test_perf_replayer.py

## Public-API snapshot + client-facade suites on their own.
api-check:
	PYTHONPATH=src python -m pytest -q -m api tests

## The determinism & invariant linter (rules RPL001-RPL009) over src/.
lint:
	PYTHONPATH=src python -m repro.lint src

## Accept the current violation set as the new baseline (review the diff!).
lint-baseline:
	PYTHONPATH=src python -m repro.lint src --write-baseline

## The session-persistence (dehydrate/hydrate) suites on their own.
persist-check:
	PYTHONPATH=src python -m pytest -x -q -m persist tests

## The trace capture/re-drive corpus suites on their own.
trace-check:
	PYTHONPATH=src python -m pytest -x -q -m trace tests

## Regenerate the re-drive corpus fixtures (review the diff! -- same
## accept-the-delta workflow as lint-baseline).
corpus:
	PYTHONPATH=src python -m repro.trace corpus tests/corpus
